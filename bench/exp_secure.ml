(** Run id [secure]: cost of the security plane.

    Every public FS operation now runs between jmpp and pret on the
    mount's protected universe (DESIGN.md Section 16).  This experiment
    prices that choice across FxMark workloads at 1-40 threads, three
    configurations of the same file system:

    - [Simurgh-plain]: [call_mode Plain] — the entry point is an
      ordinary library call (the insecure upper bound the paper argues
      protected functions nearly match);
    - [Simurgh]: the published configuration — protected entry
      (jmpp/pret + protected stack) on legacy media, root credentials,
      so per-user checks never fire;
    - [Simurgh-secure]: full enforcement — secure media (per-fentry
      owner words), a non-root tenant whose credentials are checked
      against the owner word on every resolve hop, and a live per-uid
      block quota charged on every allocation.

    The headline gate is the protected-vs-plain overhead on fig7a at the
    top thread count, which must stay at or below 15%.  Results are
    printed as the usual per-thread tables, mirrored into
    {!Simurgh_obs.Report}, summarized as [secure/*] counters, and always
    written to [BENCH_secure.json].

    A flag-off self-check asserts that a default (non-secure) format
    leaves the security plane entirely out of the media: superblock word
    68 reads zero and file entries keep their legacy 72-byte payload, so
    the published figures are reproduced bit-identically (the [make
    check] figure diff enforces that end to end). *)

open Simurgh_workloads
module Fs = Simurgh_core.Fs
module Layout = Simurgh_core.Layout
module Fentry = Simurgh_core.Fentry
module Region = Simurgh_nvmm.Region
module Slab = Simurgh_alloc.Slab_alloc
module Report = Simurgh_obs.Report
module Collect = Simurgh_obs.Collect

let thread_counts = [ 1; 2; 4; 8; 16; 24; 32; 40 ]
let overhead_budget_pct = 15.0

(* (short id, bench, base ops/thread) — the metadata bench the gate
   reads (7a), a resolve-heavy bench where the per-hop permission check
   shows (7e), and a data bench where quota charging rides every
   allocation (7g) *)
let benches =
  [
    ("7a", Fxmark.Create_private, 1000);
    ("7e", Fxmark.Resolve_private, 2000);
    ("7g", Fxmark.Append_private, 750);
  ]

let region_mb_for ~threads ~ops = max 128 (64 + (threads * ops * 6 / 1024))

let fresh_plain ~region_mb () =
  let region = Region.create (region_mb * 1024 * 1024) in
  Fs.mkfs ~euid:0 ~call_mode:Fs.Plain region

let fresh_protected ~region_mb () =
  let region = Region.create (region_mb * 1024 * 1024) in
  Fs.mkfs ~euid:0 region

(* Full enforcement: secure media formatted by a root mount that opens
   the root directory to the tenant and installs a (roomy) quota, then a
   second mount carrying the tenant's credentials runs the workload.
   Every resolve hop pays the owner-word check and every block
   allocation pays the quota charge. *)
let fresh_secure ~region_mb () =
  let region = Region.create (region_mb * 1024 * 1024) in
  let root = Fs.mkfs ~euid:0 ~secure:true region in
  Fs.chmod root "/" 0o777;
  Fs.set_quota root ~uid:1000 ~blocks:(1 lsl 40);
  Fs.mount ~euid:1000 ~egid:1000 region

let sweep fresh bench ~ops =
  List.map
    (fun threads ->
      let region_mb = region_mb_for ~threads ~ops in
      let fs = fresh ~region_mb () in
      let machine = Simurgh_sim.Machine.create () in
      let r = Targets.Fx_simurgh.run machine fs bench ~threads ~ops in
      Util.kops r.Fxmark.throughput)
    thread_counts

let overhead_pct base cost =
  List.map2
    (fun b c -> if b > 0.0 then (b -. c) /. b *. 100.0 else 0.0)
    base cost

type series = {
  bench_id : string;
  bench_name : string;
  ops : int;
  plain_kops : float list;
  protected_kops : float list;
  secure_kops : float list;
  protected_overhead_pct : float list;
  secure_overhead_pct : float list;
}

let print_thread_header title =
  Report.table ~title
    ~columns:(List.map (Printf.sprintf "t%d") thread_counts);
  Printf.printf "%-22s" "threads";
  List.iter (fun t -> Printf.printf " %9d" t) thread_counts;
  print_newline ()

(* The security plane must be invisible on legacy media: a default
   format writes nothing at the superblock's secure word and keeps the
   72-byte fentry payload, so every published figure replays on
   bit-identical media. *)
let flag_off_selfcheck () =
  let region = Region.create (4 * 1024 * 1024) in
  let layout = Layout.format region ~cores:2 in
  let word = Region.read_u32 region 68 in
  let fe_size = Slab.obj_size layout.Layout.fentry_slab in
  if word <> 0 then failwith "secure: legacy format wrote the secure word";
  if fe_size <> Fentry.payload_size then
    failwith "secure: legacy format widened the fentry payload";
  let secure_region = Region.create (4 * 1024 * 1024) in
  let secure_layout = Layout.format ~secure:true secure_region ~cores:2 in
  if Slab.obj_size secure_layout.Layout.fentry_slab <> Fentry.secure_payload_size
  then failwith "secure: secure format kept the legacy fentry payload";
  Printf.printf
    "flag-off self-check: legacy media untouched (secure word 0, fentry \
     payload %d B; secure format widens to %d B)\n"
    fe_size Fentry.secure_payload_size

let run ~scale =
  let counters = ref [] in
  Collect.note_source (fun () -> !counters);
  let tally k v = counters := (k, v) :: !counters in
  flag_off_selfcheck ();
  let tmax = List.fold_left max 1 thread_counts in
  let last l = List.nth l (List.length l - 1) in
  let all = ref [] in
  List.iter
    (fun (id, bench, base_ops) ->
      let ops = Util.scaled ~scale base_ops in
      let title =
        Printf.sprintf
          "secure %s: %s plain vs protected vs full enforcement (Kops/s; %d \
           ops/thread)"
          id (Fxmark.bench_name bench) ops
      in
      Util.header title;
      print_thread_header title;
      let plain_kops = sweep fresh_plain bench ~ops in
      Util.series "Simurgh-plain" " %9.0f" plain_kops;
      let protected_kops = sweep fresh_protected bench ~ops in
      Util.series "Simurgh" " %9.0f" protected_kops;
      let secure_kops = sweep fresh_secure bench ~ops in
      Util.series "Simurgh-secure" " %9.0f" secure_kops;
      let protected_overhead_pct = overhead_pct plain_kops protected_kops in
      Util.series "protected ovh %" " %9.2f" protected_overhead_pct;
      let secure_overhead_pct = overhead_pct plain_kops secure_kops in
      Util.series "secure ovh %" " %9.2f" secure_overhead_pct;
      tally
        (Printf.sprintf "secure/%s/plain_t%d_kops" id tmax)
        (last plain_kops);
      tally
        (Printf.sprintf "secure/%s/protected_t%d_kops" id tmax)
        (last protected_kops);
      tally
        (Printf.sprintf "secure/%s/secure_t%d_kops" id tmax)
        (last secure_kops);
      tally
        (Printf.sprintf "secure/%s/protected_overhead_t%d_pct" id tmax)
        (last protected_overhead_pct);
      tally
        (Printf.sprintf "secure/%s/secure_overhead_t%d_pct" id tmax)
        (last secure_overhead_pct);
      all :=
        {
          bench_id = id;
          bench_name = Fxmark.bench_name bench;
          ops;
          plain_kops;
          protected_kops;
          secure_kops;
          protected_overhead_pct;
          secure_overhead_pct;
        }
        :: !all)
    benches;
  let all = List.rev !all in
  (* --- the acceptance gate -------------------------------------------- *)
  let gate =
    match List.find_opt (fun s -> s.bench_id = "7a") all with
    | Some s -> last s.protected_overhead_pct
    | None -> nan
  in
  let gate_ok = gate <= overhead_budget_pct in
  Printf.printf
    "gate: fig7a protected-vs-plain overhead at t%d = %.2f%% (budget %.0f%%) \
     -> %s\n"
    tmax gate overhead_budget_pct
    (if gate_ok then "PASS" else "FAIL");
  tally "secure/gate_overhead_pct" gate;
  tally "secure/gate_pass" (if gate_ok then 1.0 else 0.0);
  if not gate_ok then
    failwith
      (Printf.sprintf
         "secure: protected-path overhead %.2f%% exceeds the %.0f%% budget"
         gate overhead_budget_pct);
  (* --- BENCH_secure.json ----------------------------------------------- *)
  let oc = open_out "BENCH_secure.json" in
  let out fmt = Printf.fprintf oc fmt in
  let floats l = String.concat ", " (List.map (Printf.sprintf "%.2f") l) in
  out "{\n  \"schema\": \"simurgh-secure-v1\",\n";
  out "  \"run\": \"secure\",\n  \"scale\": %g,\n" scale;
  out "  \"thread_counts\": [%s],\n"
    (String.concat ", " (List.map string_of_int thread_counts));
  out "  \"gate\": {\"bench\": \"7a\", \"threads\": %d, \
       \"protected_overhead_pct\": %.2f, \"budget_pct\": %.1f, \"pass\": %b},\n"
    tmax gate overhead_budget_pct gate_ok;
  out
    "  \"note\": \"kops: virtual-time Kops/s; plain: call_mode Plain \
     (library call, insecure); protected: published configuration (jmpp/pret \
     entry, root creds, legacy media); secure: protected entry + secure media \
     owner words + non-root tenant + live per-uid quota; overhead_pct is \
     relative to plain\",\n";
  out "  \"benches\": [\n";
  List.iteri
    (fun i s ->
      out "    {\"id\": %S, \"name\": %S, \"ops_per_thread\": %d,\n" s.bench_id
        s.bench_name s.ops;
      out "     \"plain_kops\": [%s],\n" (floats s.plain_kops);
      out "     \"protected_kops\": [%s],\n" (floats s.protected_kops);
      out "     \"secure_kops\": [%s],\n" (floats s.secure_kops);
      out "     \"protected_overhead_pct\": [%s],\n"
        (floats s.protected_overhead_pct);
      out "     \"secure_overhead_pct\": [%s]}%s\n" (floats s.secure_overhead_pct)
        (if i = List.length all - 1 then "" else ","))
    all;
  out "  ]\n}\n";
  close_out oc;
  Printf.printf "wrote BENCH_secure.json\n"
