(** Shared helpers for the experiment harness.

    Every printed table is mirrored into {!Simurgh_obs.Report} so that a
    [--json DIR] run exports the same numbers machine-readably; when no
    report is active the mirroring is a no-op. *)

module Report = Simurgh_obs.Report

let thread_counts = [ 1; 2; 4; 7; 10 ]

let last_header = ref ""

let header title =
  last_header := title;
  Printf.printf "\n=== %s ===\n" title

let row_header name = Printf.printf "%-18s" name

let print_series fmt values =
  List.iter (fun v -> Printf.printf fmt v) values;
  print_newline ()

let print_thread_header () =
  Report.table ~title:!last_header
    ~columns:(List.map (Printf.sprintf "t%d") thread_counts);
  Printf.printf "%-18s" "threads";
  List.iter (fun t -> Printf.printf " %9d" t) thread_counts;
  print_newline ()

(** Print one labeled row and mirror it into the current report table. *)
let series name fmt values =
  row_header name;
  print_series fmt values;
  Report.row name values

(** ops per thread scaled by the experiment scale factor. *)
let scaled ~scale base = max 64 (int_of_float (float_of_int base *. scale))

let kops v = v /. 1000.0
let mops v = v /. 1.0e6

let pp_breakdown name (app, copy, fs) =
  Report.ensure_table ~title:"breakdown (% of execution time)"
    ~columns:[ "app%"; "copy%"; "fs%" ];
  Report.row name [ 100.0 *. app; 100.0 *. copy; 100.0 *. fs ];
  Printf.printf "%-12s  app %5.1f%%   data-copy %5.1f%%   file-system %5.1f%%\n"
    name (100.0 *. app) (100.0 *. copy) (100.0 *. fs)
