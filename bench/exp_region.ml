(** Run id [region]: wall-clock microbenchmark of the NVMM region data
    path (the substrate every other experiment runs on).

    Reports ns/op and ops/s for u62 load/store, 4 KB blits and
    Strict-mode persist-barrier cycles, each against a byte-at-a-time
    reference that decomposes the access exactly like the seed
    implementation did (one guard/bounds/stats round per byte).  Results
    go to [BENCH_region.json] so later PRs have a perf trajectory; the
    JSON also records the seed implementation's numbers measured on the
    same machine before the word/line-granular rewrite. *)

open Simurgh_nvmm

(* Seed-implementation wall-clock numbers (commit cdceb37, byte-at-a-time
   region), measured with the same loops on the machine this reproduction
   is developed on.  Kept as the fixed "before" of the rewrite. *)
let seed_ns =
  [
    ("u62_store_fast", 39.5);
    ("u62_load_fast", 38.6);
    ("blit_4k_write_fast", 106.0);
    ("strict_4k_write_persist", 99393.0);
    ("strict_u62_persist_barrier", 1677.1);
    ("strict_4k_read", 46286.1);
  ]

let time_ns_per_op iters f =
  let t0 = Unix.gettimeofday () in
  f iters;
  let t1 = Unix.gettimeofday () in
  (t1 -. t0) *. 1e9 /. float_of_int iters

(* --- byte-at-a-time reference (the seed decomposition) ----------------- *)

let ref_read_u62 r off =
  let b i = Region.read_u8 r (off + i) in
  let u16 i = b i lor (b (i + 1) lsl 8) in
  let u32 i = u16 i lor (u16 (i + 2) lsl 16) in
  u32 0 lor (u32 4 lsl 32)

let ref_write_u62 r off v =
  let wb i x = Region.write_u8 r (off + i) (x land 0xff) in
  let w16 i x =
    wb i x;
    wb (i + 1) (x lsr 8)
  in
  let w32 i x =
    w16 i x;
    w16 (i + 2) (x lsr 16)
  in
  w32 0 (v land 0xffffffff);
  w32 4 ((v lsr 32) land 0x3fffffff)

let ref_write_bytes r off src =
  for i = 0 to Bytes.length src - 1 do
    Region.write_u8 r (off + i) (Char.code (Bytes.get src i))
  done

let ref_read_bytes r off len =
  let out = Bytes.create len in
  for i = 0 to len - 1 do
    Bytes.set out i (Char.chr (Region.read_u8 r (off + i)))
  done;
  out

(* --- benchmark definitions --------------------------------------------- *)

type result = {
  name : string;
  ns : float;
  ref_ns : float;
  iters : int;
}

let run ~scale =
  Util.header "region: NVMM data-path microbenchmark (host wall-clock)";
  let results = ref [] in
  let bench name ~iters ~main ~reference =
    let iters = max 200 (int_of_float (float_of_int iters *. scale)) in
    (* warm up, then measure *)
    main (min iters 1000);
    let ns = time_ns_per_op iters main in
    reference (min iters 1000);
    let ref_ns = time_ns_per_op iters reference in
    Printf.printf "%-28s %9.1f ns/op  %11.0f ops/s   byte-ref %9.1f ns/op  (%.1fx)\n"
      name ns (1e9 /. ns) ref_ns (ref_ns /. ns);
    results := { name; ns; ref_ns; iters } :: !results
  in
  let mask = (1 lsl 16) - 1 in
  let fast = Region.create (1 lsl 22) in
  bench "u62_store_fast" ~iters:2_000_000
    ~main:(fun n ->
      for i = 1 to n do
        Region.write_u62 fast ((i land mask) * 8) i
      done)
    ~reference:(fun n ->
      for i = 1 to n do
        ref_write_u62 fast ((i land mask) * 8) i
      done);
  bench "u62_load_fast" ~iters:2_000_000
    ~main:(fun n ->
      let acc = ref 0 in
      for i = 1 to n do
        acc := !acc + Region.read_u62 fast ((i land mask) * 8)
      done;
      Sys.opaque_identity !acc |> ignore)
    ~reference:(fun n ->
      let acc = ref 0 in
      for i = 1 to n do
        acc := !acc + ref_read_u62 fast ((i land mask) * 8)
      done;
      Sys.opaque_identity !acc |> ignore);
  let page = Bytes.make 4096 'x' in
  bench "blit_4k_write_fast" ~iters:100_000
    ~main:(fun n ->
      for i = 1 to n do
        Region.write_bytes fast ((i land 0xff) * 4096) page
      done)
    ~reference:(fun n ->
      for i = 1 to n do
        ref_write_bytes fast ((i land 0xff) * 4096) page
      done);
  let strict () = Region.create ~mode:Region.Strict (1 lsl 22) in
  let s1 = strict () and s2 = strict () in
  bench "strict_4k_write_persist" ~iters:4_000
    ~main:(fun n ->
      for i = 1 to n do
        let off = (i land 0xff) * 4096 in
        Region.ntstore s1 off page;
        Region.sfence s1
      done)
    ~reference:(fun n ->
      for i = 1 to n do
        let off = (i land 0xff) * 4096 in
        ref_write_bytes s2 off page;
        Region.clwb s2 off 4096;
        Region.sfence s2
      done);
  let s3 = strict () and s4 = strict () in
  bench "strict_u62_persist_barrier" ~iters:40_000
    ~main:(fun n ->
      for i = 1 to n do
        let off = (i land mask) * 8 in
        Region.write_u62 s3 off i;
        Region.clwb s3 off 8;
        Region.sfence s3
      done)
    ~reference:(fun n ->
      for i = 1 to n do
        let off = (i land mask) * 8 in
        ref_write_u62 s4 off i;
        Region.clwb s4 off 8;
        Region.sfence s4
      done);
  (* dirty the overlay so reads actually merge lines *)
  let s5 = strict () and s6 = strict () in
  Region.write_bytes s5 0 (Bytes.make (1 lsl 20) 'y');
  Region.write_bytes s6 0 (Bytes.make (1 lsl 20) 'y');
  bench "strict_4k_read" ~iters:4_000
    ~main:(fun n ->
      for i = 1 to n do
        Sys.opaque_identity (Region.read_bytes s5 ((i land 0xff) * 4096) 4096)
        |> ignore
      done)
    ~reference:(fun n ->
      for i = 1 to n do
        Sys.opaque_identity (ref_read_bytes s6 ((i land 0xff) * 4096) 4096)
        |> ignore
      done);
  let results = List.rev !results in
  (* --- BENCH_region.json -------------------------------------------- *)
  let oc = open_out "BENCH_region.json" in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n  \"run\": \"region\",\n  \"scale\": %g,\n" scale;
  out "  \"note\": \"ns_per_op: current word/line-granular implementation; \
       byte_ref_ns_per_op: byte-at-a-time decomposition through the same \
       region (the seed access pattern); seed_ns_per_op: the actual seed \
       implementation measured before the rewrite (commit cdceb37)\",\n";
  out "  \"results\": [\n";
  List.iteri
    (fun i r ->
      let seed = List.assoc_opt r.name seed_ns in
      out "    {\"name\": %S, \"iters\": %d, \"ns_per_op\": %.2f, \
           \"ops_per_s\": %.0f, \"byte_ref_ns_per_op\": %.2f, \
           \"speedup_vs_byte_ref\": %.2f"
        r.name r.iters r.ns (1e9 /. r.ns) r.ref_ns (r.ref_ns /. r.ns);
      (match seed with
      | Some s ->
          out ", \"seed_ns_per_op\": %.2f, \"speedup_vs_seed\": %.2f" s
            (s /. r.ns)
      | None -> ());
      out "}%s\n" (if i = List.length results - 1 then "" else ","))
    results;
  out "  ]\n}\n";
  close_out oc;
  Printf.printf "wrote BENCH_region.json\n"
