(** Run id [recovery]: the paper's recovery-time figure, reproduced.

    The artifact's [run_recovery.sh] crashes a file system holding 10
    Linux source trees (761,720 files+dirs) and times the mark-and-sweep
    recovery (4.1 s on Optane).  This experiment sweeps the population
    10^4 -> 10^6 files at proportionally sized regions and reports, per
    point:

    + the {b sequential reproduction curve}: virtual-time model seconds
      (the cost model charges dependent metadata line fetches at
      NVMM read latency / MLP, bulk scans at streaming bandwidth) plus
      host wall-clock as a sanity anchor;
    + the {b parallel-sweep speedup} at 1/2/4/8 workers over the same
      image, using the virtual-time work-pool driver
      ({!Simurgh_sim.Workpool.run_vtime}) — identical task set, list
      scheduling over worker clocks, sequential phases charged to
      worker 0 (the Amdahl tail is measured, not assumed);
    + the offline checker's verdict on the recovered image (must be 0
      violations at every point and worker count).

    The tree is create-only (no data writes): recovery time is a
    metadata property — files/dirs per object, not bytes.  Every image
    also carries leaked slab objects (crashed mid-create) so the sweep
    has real garbage to reclaim.

    JSON: [BENCH_recovery.json], schema [simurgh-recovery-v1]. *)

module Fs = Simurgh_core.Fs
module Recovery = Simurgh_core.Recovery
module Check = Simurgh_core.Check
module Layout = Simurgh_core.Layout
module Region = Simurgh_nvmm.Region
module Slab = Simurgh_alloc.Slab_alloc
module Machine = Simurgh_sim.Machine
module Cost_model = Simurgh_sim.Cost_model
module Collect = Simurgh_obs.Collect

let worker_counts = [ 1; 2; 4; 8 ]
let files_per_dir = 48
let paper_objects = 761_720
let paper_seconds = 4.1

type point = {
  files : int;
  dirs : int;
  seq_wall_s : float;
  seq_model_s : float;
  model_s : float list;  (** one per worker count *)
  speedup : float list;  (** seq_model_s / model_s *)
  checker_violations : int;
  report : Recovery.report;  (** from the last (widest) parallel run *)
}

(* ~1.8 KB of metadata per file covers fentry + inode slab slots, the
   48-entries-per-dir hash blocks (two 4 KiB blocks per directory) and
   allocator slack at every sweep point. *)
let region_bytes ~files = (96 * 1024 * 1024) + (files * 1800)

let populate fs ~files =
  let dirs = max 1 ((files + files_per_dir - 1) / files_per_dir) in
  let made = ref 0 in
  for d = 0 to dirs - 1 do
    let dir = Printf.sprintf "/d%d" d in
    Fs.mkdir fs dir;
    let here = min files_per_dir (files - !made) in
    for i = 0 to here - 1 do
      Fs.create_file fs (Printf.sprintf "%s/f%d" dir i)
    done;
    made := !made + here
  done;
  dirs

let measure ~files =
  let region = Region.create (region_bytes ~files) in
  let fs = Fs.mkfs ~euid:0 region in
  let dirs = populate fs ~files in
  (* crashed mid-create: allocated-but-unlinked objects for the sweep *)
  let layout = Fs.layout fs in
  for _ = 1 to 32 do
    ignore (Slab.alloc layout.Layout.inode_slab)
  done;
  for _ = 1 to 32 do
    ignore (Slab.alloc layout.Layout.fentry_slab)
  done;
  let cp = Region.checkpoint region in
  (* sequential reference: wall-clock + 1-worker virtual time *)
  Fs.invalidate_shared region;
  let t0 = Sys.time () in
  let _, _ = Recovery.run region in
  let seq_wall_s = Sys.time () -. t0 in
  let runs =
    List.map
      (fun workers ->
        Region.restore region cp;
        Fs.invalidate_shared region;
        let machine = Machine.create () in
        let _, r =
          Recovery.run ~par:(Recovery.Vtime { machine; workers }) region
        in
        let viols = List.length (Check.run region) in
        (Cost_model.seconds machine.Machine.cm r.Recovery.vtime_cycles, viols, r))
      worker_counts
  in
  let model_s = List.map (fun (s, _, _) -> s) runs in
  let seq_model_s = List.hd model_s in
  let checker_violations =
    List.fold_left (fun a (_, v, _) -> a + v) 0 runs
  in
  let _, _, last_report = List.nth runs (List.length runs - 1) in
  {
    files;
    dirs;
    seq_wall_s;
    seq_model_s;
    model_s;
    speedup =
      List.map (fun s -> if s > 0.0 then seq_model_s /. s else 0.0) model_s;
    checker_violations;
    report = last_report;
  }

let run ~scale =
  Util.header
    "recovery: parallel mark-and-sweep recovery time vs file count";
  let counters = ref [] in
  Collect.note_source (fun () -> !counters @ Recovery.counters ());
  let tally k v = counters := (k, v) :: !counters in
  let file_counts =
    List.map (fun b -> Util.scaled ~scale b) [ 10_000; 100_000; 1_000_000 ]
    |> List.sort_uniq compare
  in
  Printf.printf
    "%-9s %-6s | %-9s %-9s | %s | %s\n" "files" "dirs" "wall(s)" "model(s)"
    "model seconds at w=1/2/4/8" "speedup";
  let points =
    List.map
      (fun files ->
        let p = measure ~files in
        Printf.printf "%-9d %-6d | %9.3f %9.4f | %s | %s | fsck %s\n" p.files
          p.dirs p.seq_wall_s p.seq_model_s
          (String.concat " "
             (List.map (Printf.sprintf "%9.4f") p.model_s))
          (String.concat " " (List.map (Printf.sprintf "%5.2f") p.speedup))
          (if p.checker_violations = 0 then "clean"
           else Printf.sprintf "%d VIOLATIONS" p.checker_violations);
        tally
          (Printf.sprintf "recovery/model_s_files%d" p.files)
          p.seq_model_s;
        tally
          (Printf.sprintf "recovery/speedup_w8_files%d" p.files)
          (List.nth p.speedup (List.length p.speedup - 1));
        tally "recovery/checker_violations"
          (float_of_int p.checker_violations);
        p)
      file_counts
  in
  let last = List.nth points (List.length points - 1) in
  let objs = last.files + last.dirs in
  let rate = float_of_int objs /. Float.max 1e-9 last.seq_model_s in
  Printf.printf
    "largest point: %d objects in %.3f model s (%.0f objects/s); paper \
     population (%d objects) would take ~%.1f s at this rate (paper: %.1f \
     s); 8-worker sweep: %.2fx\n"
    objs last.seq_model_s rate paper_objects
    (float_of_int paper_objects /. rate)
    paper_seconds
    (List.nth last.speedup (List.length last.speedup - 1));

  (* --- BENCH_recovery.json --------------------------------------------- *)
  let oc = open_out "BENCH_recovery.json" in
  let out fmt = Printf.fprintf oc fmt in
  let floats l = String.concat ", " (List.map (Printf.sprintf "%.6f") l) in
  out "{\n  \"schema\": \"simurgh-recovery-v1\",\n";
  out "  \"run\": \"recovery\",\n  \"scale\": %g,\n" scale;
  out "  \"worker_counts\": [%s],\n"
    (String.concat ", " (List.map string_of_int worker_counts));
  out "  \"paper_anchor\": {\"objects\": %d, \"seconds\": %g},\n"
    paper_objects paper_seconds;
  out
    "  \"note\": \"model_s: virtual-time seconds of Recovery.run under the \
     work-pool vtime driver at each worker count (dependent metadata line \
     fetches at NVMM latency/MLP, bulk segment scans at streaming \
     bandwidth, sequential phases on worker 0); seq_wall_s: host \
     wall-clock of the plain sequential run, sanity anchor only; speedup: \
     model_s[w=1] / model_s[w]\",\n";
  out "  \"points\": [\n";
  List.iteri
    (fun i p ->
      out "    {\"files\": %d, \"dirs\": %d,\n" p.files p.dirs;
      out "     \"seq_wall_s\": %.6f, \"seq_model_s\": %.6f,\n" p.seq_wall_s
        p.seq_model_s;
      out "     \"model_s\": [%s],\n" (floats p.model_s);
      out "     \"speedup\": [%s],\n" (floats p.speedup);
      out "     \"checker_violations\": %d,\n" p.checker_violations;
      let r = p.report in
      out
        "     \"report\": {\"files\": %d, \"dirs\": %d, \
         \"reclaimed_inodes\": %d, \"reclaimed_fentries\": %d, \
         \"quarantined\": %d, \"resolve_passes\": %d, \"mark_tasks\": %d, \
         \"sweep_tasks\": %d}}%s\n"
        r.Recovery.files r.Recovery.dirs r.Recovery.reclaimed_inodes
        r.Recovery.reclaimed_fentries r.Recovery.quarantined
        r.Recovery.resolve_passes r.Recovery.mark_tasks
        r.Recovery.sweep_tasks
        (if i = List.length points - 1 then "" else ","))
    points;
  out "  ]\n}\n";
  close_out oc;
  Printf.printf "wrote BENCH_recovery.json\n"
