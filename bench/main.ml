(** Benchmark harness: regenerates every table and figure of the paper's
    evaluation (see DESIGN.md Section 3 for the experiment index).

    Usage:
      dune exec bench/main.exe                   -- run everything
      dune exec bench/main.exe -- fig7b fig9     -- selected experiments
      dune exec bench/main.exe -- --scale 2.0 all
      dune exec bench/main.exe -- --list *)

let experiments : (string * string * (scale:float -> unit)) list =
  [
    ("sec33", "cycle counts: call vs jmpp/pret vs syscall (gem5-lite)",
     Exp_sec33.run);
    ("tab1", "Table 1: NOVA execution-time breakdown", Exp_tab1.run);
    ("fig6", "Fig. 6: FxMark DRBL original vs adapted read bandwidth",
     Exp_fig6.run);
    ("fig7", "Fig. 7a-l: all FxMark microbenchmarks", Exp_fig7.run);
    ("tab2+fig8", "Table 2 + Fig. 8: Filebench workloads", Exp_fig8.run);
    ("fig9", "Fig. 9: YCSB throughput (normalized to SplitFS)", Exp_fig9.run);
    ("fig10", "Fig. 10: YCSB breakdown for Simurgh", Exp_fig10.run);
    ("fig11", "Fig. 11: tar pack/unpack", Exp_fig11.run);
    ("fig12", "Fig. 12: git add/commit/reset", Exp_fig12.run);
    ("sec55", "Section 5.5: crash-recovery time", Exp_sec55.run);
    ("ablation", "ablations of Simurgh design choices", Exp_ablation.run);
    ("bechamel", "wall-clock hot paths (host CPU)", Exp_bechamel.run);
    ("region", "NVMM region data-path microbenchmark (wall-clock, JSON)",
     Exp_region.run);
  ]

let is_fig7_sub id =
  String.length id = 5 && String.sub id 0 4 = "fig7" && id.[4] >= 'a'

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let scale = ref 1.0 in
  let ids = ref [] in
  let list_only = ref false in
  let rec parse = function
    | [] -> ()
    | "--scale" :: v :: rest ->
        scale := float_of_string v;
        parse rest
    | "--list" :: rest ->
        list_only := true;
        parse rest
    | id :: rest ->
        ids := id :: !ids;
        parse rest
  in
  parse args;
  if !list_only then begin
    List.iter
      (fun (id, desc, _) -> Printf.printf "%-10s %s\n" id desc)
      experiments;
    exit 0
  end;
  let ids = match List.rev !ids with [] | [ "all" ] -> [] | l -> l in
  Printf.printf
    "Simurgh reproduction benchmark harness (scale=%.2f). Throughputs are \
     virtual-time (modeled 2.5 GHz Xeon + Optane; see DESIGN.md).\n"
    !scale;
  let run_id id =
    if is_fig7_sub id then Exp_fig7.run_one ~scale:!scale id
    else
      match List.find_opt (fun (i, _, _) -> i = id) experiments with
      | Some (_, _, f) -> f ~scale:!scale
      | None ->
          Printf.printf
            "unknown experiment %S (use --list; fig7a..fig7l also work)\n" id
  in
  match ids with
  | [] -> List.iter (fun (_, _, f) -> f ~scale:!scale) experiments
  | ids -> List.iter run_id ids
