(** Benchmark harness: regenerates every table and figure of the paper's
    evaluation (see DESIGN.md Section 3 for the experiment index).

    Usage:
      dune exec bench/main.exe                   -- run everything
      dune exec bench/main.exe -- fig7b fig9     -- selected experiments
      dune exec bench/main.exe -- --scale 2.0 all
      dune exec bench/main.exe -- --json out fig7a fig10
      dune exec bench/main.exe -- --list

    With [--json DIR], each experiment additionally writes
    [DIR/BENCH_<id>.json]: the printed tables plus the merged
    observability snapshot (per-op latency percentiles, per-site lock
    contention, region/allocator counters).  Schema: "simurgh-bench-v1",
    documented in DESIGN.md. *)

module Obs = Simurgh_obs

let experiments : (string * string * (scale:float -> unit)) list =
  [
    ("sec33", "cycle counts: call vs jmpp/pret vs syscall (gem5-lite)",
     Exp_sec33.run);
    ("tab1", "Table 1: NOVA execution-time breakdown", Exp_tab1.run);
    ("fig6", "Fig. 6: FxMark DRBL original vs adapted read bandwidth",
     Exp_fig6.run);
    ("fig7", "Fig. 7a-l: all FxMark microbenchmarks", Exp_fig7.run);
    ("tab2+fig8", "Table 2 + Fig. 8: Filebench workloads", Exp_fig8.run);
    ("fig9", "Fig. 9: YCSB throughput (normalized to SplitFS)", Exp_fig9.run);
    ("fig10", "Fig. 10: YCSB breakdown for Simurgh", Exp_fig10.run);
    ("fig11", "Fig. 11: tar pack/unpack", Exp_fig11.run);
    ("fig12", "Fig. 12: git add/commit/reset", Exp_fig12.run);
    ("sec55", "Section 5.5: crash-recovery time", Exp_sec55.run);
    ("crash", "crash-image exploration, media faults, fsck checker",
     Exp_crash.run);
    ("sched", "schedule exploration + happens-before race detection",
     Exp_sched.run);
    ("ablation", "ablations of Simurgh design choices", Exp_ablation.run);
    ("bechamel", "wall-clock hot paths (host CPU)", Exp_bechamel.run);
    ("region", "NVMM region data-path microbenchmark (wall-clock, JSON)",
     Exp_region.run);
    ("scale", "metadata scalability: seed vs striped/cached Simurgh (JSON)",
     Exp_scale.run);
    ("data", "data-path scaling: byte-range locks + open-loop tail latency (JSON)",
     Exp_data.run);
    ("recovery",
     "recovery time vs file count + parallel-sweep speedup (JSON)",
     Exp_recovery.run);
    ("numa",
     "multi-region NVMM: bandwidth scaling + cross-socket surcharge (JSON)",
     Exp_numa.run);
    ("secure",
     "security plane: plain vs protected entry vs full enforcement (JSON)",
     Exp_secure.run);
  ]

let is_fig7_sub id =
  String.length id = 5
  && String.sub id 0 4 = "fig7"
  && id.[4] >= 'a'
  && id.[4] <= 'l'

let mkdir_p dir =
  try Unix.mkdir dir 0o755 with
  | Unix.Unix_error (Unix.EEXIST, _, _) -> ()

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let known = List.map (fun (id, _, _) -> id) experiments in
  let cfg =
    match Obs.Obs_cli.parse ~known ~is_dynamic:is_fig7_sub args with
    | Ok cfg -> cfg
    | Error msg ->
        prerr_endline ("bench: " ^ msg);
        exit 2
  in
  if cfg.Obs.Obs_cli.list_only then begin
    List.iter
      (fun (id, desc, _) -> Printf.printf "%-10s %s\n" id desc)
      experiments;
    exit 0
  end;
  if cfg.Obs.Obs_cli.check_only then exit (Exp_crash.fsck ());
  if cfg.Obs.Obs_cli.races_only then
    exit (Exp_sched.selfcheck ~scale:cfg.Obs.Obs_cli.scale ());
  let scale = cfg.Obs.Obs_cli.scale in
  let json_dir = cfg.Obs.Obs_cli.json_dir in
  Option.iter mkdir_p json_dir;
  Printf.printf
    "Simurgh reproduction benchmark harness (scale=%.2f). Throughputs are \
     virtual-time (modeled 2.5 GHz Xeon + Optane; see DESIGN.md).\n"
    scale;
  let run_one id f =
    match json_dir with
    | None -> f ~scale
    | Some dir ->
        (* collect per-machine obs runs + counter sources created while
           this experiment runs, then export everything it printed *)
        Obs.Report.begin_exp id;
        Obs.Collect.install ();
        Fun.protect
          ~finally:(fun () ->
            if Obs.Collect.active () || Obs.Report.active () then begin
              Obs.Collect.discard ();
              Obs.Report.discard ()
            end)
          (fun () ->
            f ~scale;
            let merged = Obs.Collect.drain () in
            match Obs.Report.finish ~dir ~scale ~obs:merged with
            | Some path -> Printf.printf "wrote %s\n" path
            | None -> ())
  in
  let run_id id =
    if is_fig7_sub id then run_one id (fun ~scale -> Exp_fig7.run_one ~scale id)
    else
      let _, _, f = List.find (fun (i, _, _) -> i = id) experiments in
      run_one id f
  in
  match cfg.Obs.Obs_cli.ids with
  | [] -> List.iter (fun (id, _, f) -> run_one id f) experiments
  | ids ->
      List.iter
        (fun id ->
          if id = "all" then List.iter (fun (i, _, f) -> run_one i f) experiments
          else run_id id)
        ids
