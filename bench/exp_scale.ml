(** Run id [scale]: metadata-scalability sweep of the shared-directory
    path.

    The paper's evaluation stops at 10 threads, where the seed
    reproduction's single per-directory append lock barely shows.  This
    experiment sweeps the four metadata FxMark microbenchmarks that
    stress one directory (7b createfile-shared, 7d renamefile-shared,
    7f resolvepath-shared, plus 7a createfile-private as the
    uncontended control) across thread counts well past that, comparing
    seed Simurgh against the scaled configuration (striped directory
    locks + per-thread allocator caches + DRAM resolve cache — see
    DESIGN.md "Metadata scalability").  Both configurations share the
    same on-media layout; only volatile coordination differs.

    Results are printed as the usual per-thread tables, mirrored into
    {!Simurgh_obs.Report} for the [--json] flow, summarized as
    [scale/*] observability counters, and always written to
    [BENCH_scale.json] in the working directory so the perf trajectory
    is kept across PRs. *)

open Simurgh_workloads
module Report = Simurgh_obs.Report
module Collect = Simurgh_obs.Collect

let thread_counts = [ 1; 2; 4; 8; 16; 24; 32; 40 ]

(* (short id, bench, base ops/thread) — creates kept moderate so the
   40-thread shared directory stays within sane chain lengths *)
let benches =
  [
    ("7b", Fxmark.Create_shared, 1000);
    ("7d", Fxmark.Rename_shared, 1000);
    ("7f", Fxmark.Resolve_shared, 2000);
    ("7a", Fxmark.Create_private, 1000);
  ]

type series = {
  bench_id : string;
  bench_name : string;
  ops : int;
  seed_kops : float list;
  scaled_kops : float list;
  speedup : float list;
  ring_kops : float list option;
      (* third curve, rename benches only: the scaled configuration
         plus the per-directory rename-log ring format *)
}

let print_thread_header title =
  Report.table ~title
    ~columns:(List.map (Printf.sprintf "t%d") thread_counts);
  Printf.printf "%-18s" "threads";
  List.iter (fun t -> Printf.printf " %9d" t) thread_counts;
  print_newline ()

(* Right-size the region per run: the sweep churns dozens of file
   systems, and under [--json] the obs collector keeps each one alive
   until the experiment drains — at the default 512 MB per region that
   retains gigabytes for no benefit.  ~2 KB per created file plus fixed
   slack covers every bench here with ample headroom. *)
let region_mb_for ~threads ~ops = max 96 (64 + (threads * ops * 2 / 1024))

let sweep (t : Targets.target) bench ~ops =
  List.map
    (fun threads ->
      let region_mb = region_mb_for ~threads ~ops in
      let r = t.Targets.run_fx ~region_mb ~threads ~ops bench in
      Util.kops r.Fxmark.throughput)
    thread_counts

(* The log-ring sweep keeps its hands on the file system so the
   rename-log slot counters can be read back after each run. *)
let sweep_ring bench ~ops =
  let acquisitions = ref 0.0 and full_waits = ref 0.0 in
  let kops =
    List.map
      (fun threads ->
        let region_mb = region_mb_for ~threads ~ops in
        let fs = Targets.fresh_simurgh_ring ~region_mb () in
        let machine = Simurgh_sim.Machine.create () in
        let r = Targets.Fx_simurgh.run machine fs bench ~threads ~ops in
        let locks = Simurgh_core.Fs.locks fs in
        acquisitions :=
          !acquisitions
          +. float_of_int (Simurgh_core.Locks.log_slot_acquisitions locks);
        full_waits :=
          !full_waits
          +. float_of_int (Simurgh_core.Locks.log_ring_full_waits locks);
        Util.kops r.Fxmark.throughput)
      thread_counts
  in
  (kops, !acquisitions, !full_waits)

let run ~scale =
  let counters = ref [] in
  (* sampled at drain time in the --json flow; harmless otherwise *)
  Collect.note_source (fun () -> !counters);
  let tally k v = counters := (k, v) :: !counters in
  tally "scale/thread_max" (float_of_int (List.fold_left max 1 thread_counts));
  let all = ref [] in
  List.iter
    (fun (id, bench, base_ops) ->
      let ops = Util.scaled ~scale base_ops in
      let title =
        Printf.sprintf "scale %s: %s seed vs scaled (Kops/s; %d ops/thread)"
          id (Fxmark.bench_name bench) ops
      in
      Util.header title;
      print_thread_header title;
      let seed_kops = sweep (Targets.simurgh ()) bench ~ops in
      Util.series "Simurgh" " %9.0f" seed_kops;
      let scaled_kops = sweep (Targets.simurgh_scaled ()) bench ~ops in
      Util.series "Simurgh-scaled" " %9.0f" scaled_kops;
      let speedup =
        List.map2 (fun sc se -> if se > 0.0 then sc /. se else 0.0)
          scaled_kops seed_kops
      in
      Util.series "speedup" " %9.2f" speedup;
      let tmax = List.fold_left max 1 thread_counts in
      let last l = List.nth l (List.length l - 1) in
      (* rename benches get the third curve: scaled + rename-log ring,
         the only configuration whose log windows can overlap *)
      let ring_kops =
        if bench <> Fxmark.Rename_shared then None
        else begin
          let kops, acquisitions, full_waits = sweep_ring bench ~ops in
          Util.series "Simurgh-logring" " %9.0f" kops;
          Util.series "ring/scaled"
            " %9.2f"
            (List.map2 (fun r sc -> if sc > 0.0 then r /. sc else 0.0) kops
               scaled_kops);
          tally (Printf.sprintf "scale/%s/ring_t%d_kops" id tmax) (last kops);
          tally "rename_log/slot_acquisitions" acquisitions;
          tally "rename_log/ring_full_waits" full_waits;
          Some kops
        end
      in
      tally (Printf.sprintf "scale/%s/seed_t%d_kops" id tmax) (last seed_kops);
      tally
        (Printf.sprintf "scale/%s/scaled_t%d_kops" id tmax)
        (last scaled_kops);
      tally (Printf.sprintf "scale/%s/speedup_t%d" id tmax) (last speedup);
      all :=
        {
          bench_id = id;
          bench_name = Fxmark.bench_name bench;
          ops;
          seed_kops;
          scaled_kops;
          speedup;
          ring_kops;
        }
        :: !all)
    benches;
  let all = List.rev !all in
  (* --- BENCH_scale.json ------------------------------------------------ *)
  let oc = open_out "BENCH_scale.json" in
  let out fmt = Printf.fprintf oc fmt in
  let floats l = String.concat ", " (List.map (Printf.sprintf "%.2f") l) in
  out "{\n  \"schema\": \"simurgh-scale-v1\",\n";
  out "  \"run\": \"scale\",\n  \"scale\": %g,\n" scale;
  out "  \"thread_counts\": [%s],\n"
    (String.concat ", " (List.map string_of_int thread_counts));
  out
    "  \"scaled_config\": {\"striped_locks\": true, \"rcache\": true, \
     \"alloc_caches\": true},\n";
  out
    "  \"note\": \"kops: virtual-time Kops/s; seed: stock configuration; \
     scaled: striped directory locks + per-thread allocator caches + DRAM \
     resolve cache (same on-media layout); ring: scaled plus the \
     per-directory rename-log ring format (log_ring=16)\",\n";
  out "  \"benches\": [\n";
  List.iteri
    (fun i s ->
      out "    {\"id\": %S, \"name\": %S, \"ops_per_thread\": %d,\n" s.bench_id
        s.bench_name s.ops;
      out "     \"seed_kops\": [%s],\n" (floats s.seed_kops);
      out "     \"scaled_kops\": [%s],\n" (floats s.scaled_kops);
      (match s.ring_kops with
      | Some kops -> out "     \"ring_kops\": [%s],\n" (floats kops)
      | None -> ());
      out "     \"speedup\": [%s]}%s\n" (floats s.speedup)
        (if i = List.length all - 1 then "" else ","))
    all;
  out "  ]\n}\n";
  close_out oc;
  Printf.printf "wrote BENCH_scale.json\n"
