(** Run id [sched]: the concurrency plane — systematic schedule
    exploration with happens-before race detection.

    Mirrors run id [crash] ({!Exp_crash}): where that one enumerates
    crash images of the Fig. 5 state machines, this one enumerates
    thread interleavings of the same operations
    ({!Simurgh_core.Sched_explore}).  Every schedule must produce the
    same final namespace and a clean fsck; the race detector
    ({!Simurgh_sim.Race}) must stay silent on the decentralized
    (private-directory) scenarios and on the striped-lock
    shared-directory scenarios ({!Simurgh_core.Sched_explore.striped_scenarios}),
    on the byte-range data-path scenarios
    ({!Simurgh_core.Sched_explore.data_scenarios}, the correctness gate
    for the [range_locks] configuration) and on the concurrent-rename
    log-ring scenarios ({!Simurgh_core.Sched_explore.ring_scenarios},
    the correctness gate for the [log_ring] format).  Two extra parts
    keep the tooling honest:

    + {b shared-dir}: disjoint names in one directory — real
      cross-thread lock traffic plus the lock-free lookup path; its
      race reports are informational (Simurgh's by-design benign
      8-byte slot publish), not asserted zero;
    + {b negative control}: two fibers storing to one word with no
      lock; the detector {e must} report it.

    With [--json] the counters go to [BENCH_sched.json]:
    [sched/schedules_explored], [sched/schedules_distinct],
    [sched/yield_points], [sched/switches], [sched/oracle_failures],
    [race/lines_tracked], [race/reports], [race/accesses],
    [race/negative_control_reports], [race/shared_dir_reports]. *)

module Sched = Simurgh_core.Sched_explore
module Race = Simurgh_sim.Race
module Obs = Simurgh_obs

let print_stats (st : Sched.stats) =
  Printf.printf
    "  %-11s %4d schedules (%4d distinct%s), %6d yield points, %5d \
     switches, oracle failures %d, races %d, lines tracked %d\n"
    st.Sched.scenario st.Sched.schedules st.Sched.distinct
    (if st.Sched.exhaustive then ", exhaustive" else "")
    st.Sched.yields st.Sched.switches
    (List.length st.Sched.failures)
    (List.length st.Sched.races)
    st.Sched.lines_tracked;
  List.iter
    (fun (label, detail) -> Printf.printf "    FAIL %s: %s\n" label detail)
    st.Sched.failures;
  List.iter
    (fun r -> Printf.printf "    RACE %s\n" (Race.report_to_string r))
    st.Sched.races

(* Exploration budget per scenario.  [Util.scaled] floors at 64 region
   accesses — too coarse here, where each schedule is a full FS run; at
   the default scale the DFS half typically exhausts the two-thread
   trees anyway and the rest is seeded sampling. *)
let budget_of ~scale = max 24 (int_of_float (120.0 *. scale))

let run ~scale =
  Util.header
    "sched: schedule exploration + happens-before race detection";
  let budget = budget_of ~scale in
  let schedules = ref 0
  and distinct = ref 0
  and yields = ref 0
  and switches = ref 0
  and failures = ref 0
  and races = ref 0
  and lines = ref 0
  and accesses = ref 0 in
  List.iter
    (fun sc ->
      let st = Sched.run ~budget sc in
      print_stats st;
      schedules := !schedules + st.Sched.schedules;
      distinct := !distinct + st.Sched.distinct;
      yields := !yields + st.Sched.yields;
      switches := !switches + st.Sched.switches;
      failures := !failures + List.length st.Sched.failures;
      races := !races + List.length st.Sched.races;
      lines := max !lines st.Sched.lines_tracked;
      accesses := !accesses + st.Sched.accesses)
    (Sched.default_scenarios ~threads:2 @ Sched.striped_scenarios ~threads:2
    @ Sched.data_scenarios ~threads:2 @ Sched.ring_scenarios ~threads:2);
  (* parallel recovery: fiber-mode mark-and-sweep over a crashed image
     (and a poisoned variant) must be schedule-independent — identical
     durable media and report under every worker interleaving — plus
     fsck-clean and race-free *)
  let rec_failures = ref 0 and rec_races = ref 0 in
  List.iter
    (fun poison ->
      let st =
        Sched.recovery_run ~budget:(max 8 (budget / 4)) ~poison ()
      in
      Printf.printf
        "  %-11s %4d schedules (%4d distinct), %6d yield points, oracle \
         failures %d, races %d\n"
        st.Sched.rscenario st.Sched.rschedules st.Sched.rdistinct
        st.Sched.ryields
        (List.length st.Sched.rfailures)
        (List.length st.Sched.rraces);
      List.iter
        (fun (label, detail) ->
          Printf.printf "    FAIL %s: %s\n" label detail)
        st.Sched.rfailures;
      List.iter
        (fun r -> Printf.printf "    RACE %s\n" (Race.report_to_string r))
        st.Sched.rraces;
      rec_failures := !rec_failures + List.length st.Sched.rfailures;
      rec_races := !rec_races + List.length st.Sched.rraces;
      schedules := !schedules + st.Sched.rschedules;
      distinct := !distinct + st.Sched.rdistinct;
      yields := !yields + st.Sched.ryields)
    [ false; true ];
  failures := !failures + !rec_failures;
  races := !races + !rec_races;
  (* informational: cross-thread traffic in one shared directory *)
  let shared = Sched.run ~budget:(max 12 (budget / 2)) (Sched.shared_scenario ~threads:3) in
  print_stats shared;
  failures := !failures + List.length shared.Sched.failures;
  let neg = Sched.negative_control () in
  Printf.printf "  negative control (no lock): %s\n"
    (match neg with
    | [] -> "NO REPORT -- detector is broken"
    | rs ->
        Printf.sprintf "caught (%d report%s)" (List.length rs)
          (if List.length rs = 1 then "" else "s"));
  Obs.Collect.note_source (fun () ->
      [
        ("sched/schedules_explored", float_of_int !schedules);
        ("sched/schedules_distinct", float_of_int !distinct);
        ("sched/yield_points", float_of_int !yields);
        ("sched/switches", float_of_int !switches);
        ("sched/oracle_failures", float_of_int !failures);
        ("race/lines_tracked", float_of_int !lines);
        ("race/reports", float_of_int !races);
        ("race/accesses", float_of_int !accesses);
        ("race/negative_control_reports", float_of_int (List.length neg));
        ( "race/shared_dir_reports",
          float_of_int (List.length shared.Sched.races) );
        ("sched/recovery_failures", float_of_int !rec_failures);
        ("sched/recovery_races", float_of_int !rec_races);
      ]);
  Printf.printf
    "  total: %d schedules (%d distinct), %d oracle failures, %d races on \
     decentralized scenarios%s\n"
    !schedules !distinct !failures !races
    (if !failures = 0 && !races = 0 && neg <> [] then
       " -- schedule-invariant and race-free"
     else " (BUG)")

(** Standalone self-check, used by [--races] / [make races]: every
    default scenario must be schedule-invariant, fsck-clean and
    race-free, AND the negative control must fire (so a trivially
    silent detector cannot pass).  Returns a process exit code. *)
let selfcheck ~scale () =
  let budget = budget_of ~scale in
  let bad = ref 0 in
  List.iter
    (fun sc ->
      let st = Sched.run ~budget sc in
      print_stats st;
      if st.Sched.failures <> [] || st.Sched.races <> [] then incr bad;
      if st.Sched.distinct < 2 then begin
        Printf.printf "    FAIL %s: only %d distinct schedule(s) explored\n"
          st.Sched.scenario st.Sched.distinct;
        incr bad
      end)
    (Sched.default_scenarios ~threads:2 @ Sched.striped_scenarios ~threads:2
    @ Sched.data_scenarios ~threads:2 @ Sched.ring_scenarios ~threads:2);
  (* parallel recovery must hold the same bar: schedule-independent
     media, clean fsck, zero races, several distinct interleavings *)
  List.iter
    (fun poison ->
      let st =
        Sched.recovery_run ~budget:(max 8 (budget / 4)) ~poison ()
      in
      Printf.printf
        "  %-11s %4d schedules (%4d distinct), oracle failures %d, races \
         %d\n"
        st.Sched.rscenario st.Sched.rschedules st.Sched.rdistinct
        (List.length st.Sched.rfailures)
        (List.length st.Sched.rraces);
      List.iter
        (fun (label, detail) ->
          Printf.printf "    FAIL %s: %s\n" label detail)
        st.Sched.rfailures;
      if st.Sched.rfailures <> [] || st.Sched.rraces <> [] then incr bad;
      if st.Sched.rdistinct < 2 then begin
        Printf.printf
          "    FAIL %s: only %d distinct interleaving(s) explored\n"
          st.Sched.rscenario st.Sched.rdistinct;
        incr bad
      end)
    [ false; true ];
  let neg = Sched.negative_control () in
  Printf.printf "races: negative control (unlocked stores): %s\n"
    (if neg <> [] then
       Printf.sprintf "caught (%d report%s)" (List.length neg)
         (if List.length neg = 1 then "" else "s")
     else "MISSED");
  if neg = [] then incr bad;
  if !bad = 0 then 0 else 1
