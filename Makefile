.PHONY: all build test check bench data numa secure figs-gate fsck races clean

all: build

build:
	dune build

test: build
	dune runtest

# Full gate: build + unit/property/differential tests (four POSIX-suite
# passes: default, striped, log-ring, range) + a quick smoke run of the
# region data-path microbenchmark (writes BENCH_region.json), the
# bounded crash-image explorer / media-fault / checker experiment
# (including the log-ring rename machines and the crash-during-recovery
# re-entrancy machines), the metadata-scalability sweep (writes
# BENCH_scale.json with the 7d log-ring curve), the data-path scaling +
# open-loop experiment (writes BENCH_data.json), the parallel
# mark-and-sweep recovery figure (writes BENCH_recovery.json) and the
# multi-region NUMA bandwidth figure (writes BENCH_numa.json) and the
# security-plane overhead sweep with its <=15% protected-path gate
# (writes BENCH_secure.json), plus the schedule-exploration /
# race-detection and offline-fsck self-checks (both of which now also
# gate parallel recovery) and the published-figure digest gate.
check: test races fsck figs-gate
	dune exec bench/main.exe -- --scale 0.05 region crash scale data recovery numa secure

# Data-path scaling: whole-file lock vs byte-range locking on one shared
# file, plus open-loop tail latency (writes BENCH_data.json).
data: build
	dune exec bench/main.exe -- data

# Multi-region NVMM: aggregate bandwidth vs region count plus the
# cross-socket latency surcharge (writes BENCH_numa.json).
numa: build
	dune exec bench/main.exe -- numa

# Security plane: plain vs protected entry vs full per-user enforcement
# across FxMark at 1-40 threads, with the <=15% overhead gate on 7a
# (writes BENCH_secure.json).
secure: build
	dune exec bench/main.exe -- secure

# The security plane must not move a single byte of the published
# figures when the permission flag is off: the deterministic
# virtual-time outputs of fig7a/e/f, fig9, fig10 and tab1 are hashed
# and compared against the committed digest (FIGS.sha256).
figs-gate: build
	dune exec bench/main.exe -- --scale 0.05 fig7a fig7e fig7f fig9 fig10 tab1 \
	  | sha256sum | cut -d' ' -f1 | diff FIGS.sha256 - \
	  || (echo "figs-gate: published figures diverged from FIGS.sha256" && exit 1)

# Offline fsck-style self-check: the checker must pass a correctly
# recovered crash image (legacy and log-ring media) and flag both
# deliberately mis-recovered ones — skipped log resolution AND a
# broken parallel sweep (dropped mark shard).
fsck: build
	dune exec bench/main.exe -- --check

# Schedule-exploration + race-detection self-check: every default FS
# state machine must be schedule-invariant, fsck-clean and race-free
# under explored interleavings; parallel (fiber-mode) recovery must be
# schedule-independent under the same bar; and the detector's negative
# control (unlocked racing stores) must fire.
races: build
	dune exec bench/main.exe -- --scale 0.2 --races

bench: build
	dune exec bench/main.exe -- region

clean:
	dune clean
