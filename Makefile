.PHONY: all build test check bench fsck clean

all: build

build:
	dune build

test: build
	dune runtest

# Full gate: build + unit/property/differential tests + a quick smoke run
# of the region data-path microbenchmark (writes BENCH_region.json) and of
# the bounded crash-image explorer / media-fault / checker experiment.
check: test
	dune exec bench/main.exe -- --scale 0.05 region crash

# Offline fsck-style self-check: the checker must pass a correctly
# recovered crash image and flag a deliberately mis-recovered one.
fsck: build
	dune exec bench/main.exe -- --check

bench: build
	dune exec bench/main.exe -- region

clean:
	dune clean
