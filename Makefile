.PHONY: all build test check bench clean

all: build

build:
	dune build

test: build
	dune runtest

# Full gate: build + unit/property/differential tests + a quick smoke run
# of the region data-path microbenchmark (writes BENCH_region.json).
check: test
	dune exec bench/main.exe -- --scale 0.05 region

bench: build
	dune exec bench/main.exe -- region

clean:
	dune clean
